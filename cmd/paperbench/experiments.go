package main

import (
	"errors"
	"fmt"
	"strconv"

	"weakestfd"
	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/lab"
	"weakestfd/internal/lab/scenarios"
	"weakestfd/internal/sim"
)

// runFamily expands one scenario family and drives it through the lab
// engine's worker pool. The returned summaries are deterministic in (family,
// seeds) — independent of the worker count.
func runFamily(m lab.Matrix, workers int) []lab.ScenarioSummary {
	return lab.Run(m.Expand(), lab.Options{Workers: workers}).Scenarios
}

// atoi converts an axis value that is numeric by construction.
func atoi(s string) int {
	n, err := strconv.Atoi(s)
	if err != nil {
		panic(fmt.Sprintf("paperbench: non-numeric axis value %q", s))
	}
	return n
}

// runE1 sweeps the Figure 1 protocol — system size × failure pattern × Υ
// stabilization time × schedule — through the lab engine, reporting step
// counts and the number of distinct decisions (the paper's bound: ≤ n).
func runE1(w *tableWriter, seeds, workers int) {
	w.setHeader("n+1", "pattern", "Υ stabilize", "schedule", "p50 steps", "p99 steps", "max distinct", "bound", "ok")
	for _, s := range runFamily(scenarios.Fig1(seeds), workers) {
		n := atoi(s.Params["n"])
		steps := s.Metric("steps")
		distinct := int(s.Metric("distinct").Max)
		w.addRow(n, s.Params["pattern"], s.Params["stabilize"], s.Params["schedule"],
			int64(steps.P50), int64(steps.P99), distinct, n-1,
			s.Failed == 0 && distinct <= n-1)
	}
	w.note("paper claim: every run terminates with ≤ n distinct proposed values (Theorem 2)")
}

// runE2 sweeps the Figure 2 protocol over the resilience grid through the
// lab engine.
func runE2(w *tableWriter, seeds, workers int) {
	w.setHeader("n+1", "f", "crashes", "p50 steps", "max distinct", "bound", "ok")
	for _, s := range runFamily(scenarios.Fig2(seeds), workers) {
		f := atoi(s.Params["f"])
		distinct := int(s.Metric("distinct").Max)
		w.addRow(s.Params["n"], f, s.Params["crashes"], int64(s.Metric("steps").P50),
			distinct, f, s.Failed == 0 && distinct <= f)
	}
	w.note("paper claim: f-set agreement in E_f using Υ^f and registers (Theorem 6)")
}

// runE3 extracts Υ^f from each stable detector through the lab engine and
// reports the extraction's stabilization point.
func runE3(w *tableWriter, seeds, workers int) {
	w.setHeader("source D", "pattern", "stable-set size", "p50 stabilized-at", "legal")
	for _, s := range runFamily(scenarios.Extraction(seeds), workers) {
		w.addRow(s.Params["source"], s.Params["pattern"], int(s.Metric("stable-size").Max),
			int64(s.Metric("stable-from").P50), s.Failed == 0)
	}
	w.note("paper claim: any stable f-non-trivial D yields Υ^f via Figure 3 (Theorem 10)")
}

// runE4 runs the Theorem 1 adversary against every candidate extractor.
func runE4(w *tableWriter, _, _ int) {
	w.setHeader("n+1", "candidate", "forced switches", "stuck", "violation witness", "falsified")
	for _, n := range []int{4, 6, 8} {
		for _, ext := range core.AllExtractors() {
			res := core.RunAdversary(core.AdversaryConfig{
				N: n, F: n - 1,
				Extractor: ext, TargetSwitches: 30, Budget: 1 << 22,
			})
			witness := "-"
			if res.Violation != nil && res.Violation.Err != nil {
				witness = fmt.Sprintf("crash %v", res.Violation.StableL)
			}
			w.addRow(n, ext.Name, res.Switches, res.Stuck, witness, res.Falsified(30))
		}
	}
	w.note("paper claim: every Ωn-from-Υ algorithm has a run with non-stabilizing output (Theorem 1)")
}

// runE5 is the f-resilient generalization of E4, driven as the lab engine's
// adversary family.
func runE5(w *tableWriter, _, workers int) {
	w.setHeader("candidate", "n+1", "resilience", "forced switches", "stuck", "falsified")
	for _, s := range runFamily(scenarios.Adversary(), workers) {
		w.addRow(s.Params["candidate"], s.Params["n"], s.Params["resilience"],
			int64(s.Metric("switches").Max), s.Metric("stuck").Max == 1,
			s.Failed == 0 && s.Metric("falsified").Min == 1)
	}
	w.note("paper claim: Υ^f is strictly weaker than Ω^f for 2 ≤ f ≤ n (Theorem 5)")
}

// runE6 checks the two-process equivalence Υ ≡ Ω in both directions.
func runE6(w *tableWriter, seeds, _ int) {
	w.setHeader("direction", "pattern", "seeds ok", "stable output example")
	patterns := []struct {
		name string
		p    sim.Pattern
	}{
		{"failure-free", sim.FailFree(2)},
		{"p1 crashes", sim.CrashPattern(2, map[sim.PID]sim.Time{0: 30})},
		{"p2 crashes", sim.CrashPattern(2, map[sim.PID]sim.Time{1: 30})},
	}
	for _, pat := range patterns {
		okA, okB := 0, 0
		var exA, exB string
		for seed := 0; seed < seeds; seed++ {
			omega := fd.NewOmega(pat.p, 60, int64(seed))
			ups := core.ComplementOfOmega(omega, 2)
			if v, _, err := fd.CheckStable(ups, pat.p, 400, core.Upsilon(2).Legal(pat.p)); err == nil {
				okA++
				exA = fmt.Sprint(v)
			}
			upsilon := core.Upsilon(2).History(pat.p, 60, int64(seed))
			om := core.OmegaFromUpsilon2(upsilon)
			if v, _, err := fd.CheckStable(om, pat.p, 400, fd.OmegaLegal(pat.p)); err == nil {
				okB++
				exB = fmt.Sprint(v)
			}
		}
		w.addRow("Ω → Υ (complement)", pat.name, fmt.Sprintf("%d/%d", okA, seeds), exA)
		w.addRow("Υ → Ω (compl./self)", pat.name, fmt.Sprintf("%d/%d", okB, seeds), exB)
	}
	w.note("paper claim: in a system of 2 processes, Υ and Ω are equivalent (Section 4)")
}

// runE7 runs the Υ¹ → Ω reduction in E_1.
func runE7(w *tableWriter, seeds, _ int) {
	w.setHeader("pattern", "Υ¹ stable set", "elected leader", "leader correct", "ok/seeds")
	n := 4
	cases := []struct {
		name   string
		p      sim.Pattern
		stable sim.Set
	}{
		{"failure-free, U=Π−{p1}", sim.FailFree(n), sim.SetOf(0).Complement(n)},
		{"p3 crashes, U=Π", sim.CrashPattern(n, map[sim.PID]sim.Time{2: 120}), sim.FullSet(n)},
		{"p1 crashes, U=Π", sim.CrashPattern(n, map[sim.PID]sim.Time{0: 120}), sim.FullSet(n)},
	}
	for _, tc := range cases {
		ok := 0
		var leader sim.PID
		for seed := 0; seed < seeds; seed++ {
			spec := core.UpsilonF(n, 1)
			h := spec.HistoryWithStable(tc.p, 100, int64(seed), tc.stable)
			red := core.NewUpsilon1ToOmega(n, h)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				bodies[i] = red.Body()
			}
			trace := check.NewOutputTrace[string](n, func() []string {
				out := make([]string, n)
				for i := range out {
					if v := red.OutputAt(sim.PID(i)); v.OK {
						out[i] = v.V.String()
					}
				}
				return out
			})
			_, err := sim.Run(sim.Config{
				Pattern: tc.p, Schedule: sim.NewRandom(int64(seed)),
				Budget: 40_000, StopWhen: trace.Hook(),
			}, bodies)
			if err != nil && !errors.Is(err, sim.ErrBudgetExhausted) {
				continue
			}
			if s, _, err := trace.StableFrom(tc.p.Correct()); err == nil {
				for _, q := range tc.p.Correct().Members() {
					if q.String() == s {
						leader = q
						ok++
						break
					}
				}
			}
		}
		w.addRow(tc.name, tc.stable, leader, tc.p.Correct().Has(leader), fmt.Sprintf("%d/%d", ok, seeds))
	}
	w.note("paper claim: Ω = Ω¹ is extractable from Υ¹ in E_1 (Section 5.3)")
}

// runE8 assembles the Corollary 3/4 separation table.
func runE8(w *tableWriter, seeds, _ int) {
	w.setHeader("claim", "evidence", "holds")
	// (a) Ωn → Υ works (complement reduction, spec-checked).
	n := 5
	okA := 0
	for seed := 0; seed < seeds; seed++ {
		p := sim.CrashPattern(n, map[sim.PID]sim.Time{1: 40})
		omegaN := fd.NewOmegaF(p, n-1, 80, int64(seed))
		ups := core.ComplementOfOmegaF(omegaN, n)
		if _, _, err := fd.CheckStable(ups, p, 400, core.Upsilon(n).Legal(p)); err == nil {
			okA++
		}
	}
	w.addRow("Υ is weaker than Ωn", fmt.Sprintf("complement reduction legal %d/%d seeds", okA, seeds), okA == seeds)

	// (b) Υ solves n-set agreement (Fig 1).
	okB := 0
	for seed := 0; seed < seeds; seed++ {
		res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
			N: n, Proposals: proposals(n),
			CrashAt: map[int]int64{1: 20, 3: 35}, StabilizeAt: 150,
			Seed: int64(seed), Budget: 1 << 22,
		})
		if err == nil && len(res.Distinct) <= n-1 {
			okB++
		}
	}
	w.addRow("Υ solves n-set agreement", fmt.Sprintf("Figure 1 correct %d/%d seeds", okB, seeds), okB == seeds)

	// (c) Υ cannot be transformed into Ωn (Theorem 1 adversary).
	allFalsified := true
	for _, ext := range core.AllExtractors() {
		res := core.RunAdversary(core.AdversaryConfig{
			N: n, F: n - 1, Extractor: ext, TargetSwitches: 20, Budget: 1 << 22,
		})
		if !res.Falsified(20) {
			allFalsified = false
		}
	}
	w.addRow("Ωn is not weaker than Υ", "all candidate extractors falsified (Theorem 1)", allFalsified)

	// (d) The boosted-consensus side of Corollary 4: n+1-process consensus
	// from n-process consensus objects, using Ωn.
	okD := 0
	for seed := 0; seed < seeds; seed++ {
		res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
			N: n, Algorithm: weakestfd.OmegaNBoosted, Proposals: proposals(n),
			CrashAt: map[int]int64{1: 20}, StabilizeAt: 150,
			Seed: int64(seed), Budget: 1 << 22,
		})
		if err == nil && len(res.Distinct) == 1 {
			okD++
		}
	}
	w.addRow("Ωn boosts n-consensus to n+1", fmt.Sprintf("consensus via n-process objects %d/%d seeds", okD, seeds), okD == seeds)

	// (e) The composition: set agreement with an arbitrary stable detector
	// through Figure 3 ∘ Figure 1 (Theorem 10 made operational).
	okE := 0
	for seed := 0; seed < seeds; seed++ {
		res, err := weakestfd.SolveWithStableDetector(weakestfd.ComposeConfig{
			N: n, From: weakestfd.StableEvPerfect, Proposals: proposals(n),
			CrashAt: map[int]int64{1: 30}, StabilizeAt: 120, Seed: int64(seed),
		})
		if err == nil && len(res.Distinct) <= n-1 {
			okE++
		}
	}
	w.addRow("any stable D ⇒ set agreement", fmt.Sprintf("Fig 3 ∘ Fig 1 from stable ◇P, %d/%d seeds", okE, seeds), okE == seeds)
	w.note("⇒ Ωn is not the weakest detector for n-resilient n-set agreement (Corollary 3)")
	w.note("⇒ set agreement from registers is strictly easier than consensus from n-consensus (Corollary 4)")
}

// runE9 demonstrates the impossibility baselines.
func runE9(w *tableWriter, _, _ int) {
	w.setHeader("configuration", "schedule", "budget", "decided", "matches theory")
	budget := int64(50_000)

	// FD-free attempt under lockstep: livelock.
	_, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
		N: 4, Algorithm: weakestfd.AsyncAttempt, Proposals: proposals(4),
		Schedule: weakestfd.RoundRobinSchedule, Budget: budget,
	})
	w.addRow("no detector, 4 distinct values", "lockstep", budget, err == nil,
		errors.Is(err, weakestfd.ErrNoTermination))

	// FD-free attempt under a solo-friendly schedule: may decide (the
	// impossibility quantifies over *some* run).
	res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
		N: 4, Algorithm: weakestfd.AsyncAttempt, Proposals: proposals(4),
		Seed: 3, Budget: budget,
	})
	w.addRow("no detector, 4 distinct values", "random", budget, err == nil, err == nil && len(res.Distinct) <= 3)

	// Figure 1 with a spec-violating Υ (U = correct set): livelock.
	n := 4
	dummy := fd.Constant(sim.FullSet(n))
	g := core.NewFig1(n, dummy, converge.UseAtomic)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = g.Body(sim.Value(100 + i))
	}
	rep, err2 := sim.Run(sim.Config{Pattern: sim.FailFree(n), Schedule: sim.RoundRobin(), Budget: budget}, bodies)
	w.addRow("Fig 1, Υ stuck on U = correct", "lockstep", budget, len(rep.Decided) > 0,
		err2 != nil && len(rep.Decided) == 0)

	// Control: legal Υ, same schedule: decides.
	res3, err3 := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
		N: n, Proposals: proposals(n),
		Schedule: weakestfd.RoundRobinSchedule, Seed: 1, Budget: budget,
	})
	w.addRow("Fig 1, legal Υ (control)", "lockstep", budget, err3 == nil, err3 == nil && len(res3.Distinct) <= n-1)
	w.note("the adversarial schedule exhibits the impossibility; Υ's U ≠ correct clause restores liveness")
}

// runE10 reports the ablations.
func runE10(w *tableWriter, seeds, _ int) {
	w.setHeader("ablation", "configuration", "median steps", "ratio")
	// (a) snapshot implementation inside Figure 1.
	var atomicSteps, afekSteps stats
	for seed := 0; seed < seeds; seed++ {
		for _, reg := range []bool{false, true} {
			res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 4, Proposals: proposals(4), CrashAt: map[int]int64{1: 30},
				StabilizeAt: 100, Seed: int64(seed),
				RegistersOnly: reg, Budget: 1 << 23,
			})
			if err != nil {
				continue
			}
			if reg {
				afekSteps.add(res.Steps)
			} else {
				atomicSteps.add(res.Steps)
			}
		}
	}
	ratio := "-"
	if atomicSteps.median() > 0 {
		ratio = fmt.Sprintf("%.1fx", float64(afekSteps.median())/float64(atomicSteps.median()))
	}
	w.addRow("snapshot impl", "fig1 atomic snapshots", atomicSteps.median(), "1.0x")
	w.addRow("snapshot impl", "fig1 Afek registers-only", afekSteps.median(), ratio)

	// (b) decision latency vs Υ stabilization time, under worst-case legal
	// noise (Υ outputs correct(F) until ts — legal, maximally unhelpful).
	for _, ts := range []int64{0, 500, 5000} {
		var st stats
		for seed := 0; seed < seeds; seed++ {
			n := 5
			pattern := sim.FailFree(n)
			h := core.Upsilon(n).HistoryWorstCase(pattern, sim.Time(ts), int64(seed))
			g := core.NewFig1(n, h, converge.UseAtomic)
			bodies := make([]sim.Body, n)
			for i := range bodies {
				bodies[i] = g.Body(sim.Value(100 + i))
			}
			rep, err := sim.Run(sim.Config{
				Pattern: pattern, Schedule: sim.RoundRobin(), Budget: 1 << 23,
			}, bodies)
			if err != nil {
				continue
			}
			st.add(rep.Steps)
		}
		w.addRow("Υ stabilization", fmt.Sprintf("worst-case noise, ts=%d", ts), st.median(), "-")
	}

	// (c) baseline comparison at equal task.
	for _, alg := range []weakestfd.Algorithm{weakestfd.UpsilonFig1, weakestfd.OmegaNBaseline, weakestfd.OmegaNBoosted} {
		var st stats
		for seed := 0; seed < seeds; seed++ {
			res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
				N: 5, Algorithm: alg, Proposals: proposals(5),
				CrashAt: map[int]int64{2: 25}, StabilizeAt: 120,
				Seed: int64(seed), Budget: 1 << 22,
			})
			if err != nil {
				continue
			}
			st.add(res.Steps)
		}
		w.addRow("detector strength", alg.String(), st.median(), "-")
	}
	w.note("registers-only costs O(n²) steps per snapshot op — same outcomes, higher step counts")
	w.note("decision latency tracks the detector's stabilization time under lockstep")
}

func proposals(n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(100 + i)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// runE11 implements Υ from heartbeats under partial synchrony, solves set
// agreement with it, and shows pure asynchrony defeating the implementation.
func runE11(w *tableWriter, seeds, _ int) {
	w.setHeader("configuration", "schedule", "outcome", "matches theory")

	// (a) Heartbeat Υ + Figure 1 under eventual synchrony: decides.
	okA := 0
	var st stats
	for seed := 0; seed < seeds; seed++ {
		res, err := weakestfd.SolveWithTimingAssumptions(weakestfd.TimedConfig{
			N: 5, Proposals: proposals(5), CrashAt: map[int]int64{1: 400},
			GST: 1_000, Bound: 8, Seed: int64(seed),
		})
		if err == nil && len(res.Distinct) <= 4 {
			okA++
			st.add(res.Steps)
		}
	}
	w.addRow("heartbeat Υ → Fig 1", "eventually synchronous",
		fmt.Sprintf("decided %d/%d seeds, median %d steps", okA, seeds, st.median()), okA == seeds)

	// (b) The heartbeat implementation alone under growing starvation
	// bursts: output changes forever (Υ is non-trivial, hence
	// unimplementable without timing).
	n := 3
	hb := core.NewHeartbeatUpsilon(n, 4)
	bodies := make([]sim.Body, n)
	for i := range bodies {
		bodies[i] = hb.Body()
	}
	rr := sim.RoundRobin()
	var phase int
	var inPhase int64
	starving := true
	schedule := sim.Func(func(t sim.Time, enabled sim.Set) sim.PID {
		limit := int64(192) << uint(phase)
		if !starving {
			limit = 256
		}
		if inPhase >= limit {
			inPhase = 0
			if !starving {
				phase++
			}
			starving = !starving
		}
		inPhase++
		pool := enabled
		if starving {
			if rest := enabled.Remove(sim.PID(2)); !rest.IsEmpty() {
				pool = rest
			}
		}
		return rr.Next(t, pool)
	})
	changes := 0
	var prev sim.Set
	sampled := false
	_, _ = sim.Run(sim.Config{
		Pattern:  sim.FailFree(n),
		Schedule: schedule,
		Budget:   80_000,
		StopWhen: func(_ sim.Time) bool {
			cur := hb.OutputAt(0)
			if sampled && cur != prev {
				changes++
			}
			prev = cur
			sampled = true
			return false
		},
	}, bodies)
	w.addRow("heartbeat Υ alone", "growing starvation bursts",
		fmt.Sprintf("%d forced output changes (no stabilization)", changes), changes >= 6)
	w.note("timing assumptions yield Υ (Section 1); pure asynchrony defeats any implementation (Υ is non-trivial)")
}
