package main

import (
	"strings"
	"testing"
)

// report builds a minimal well-formed pair member: one benchmark plus the
// report-level fields the gate checks.
func report(bench benchResult) *benchReport {
	return &benchReport{
		Schema:                    1,
		GOMAXPROCS:                8,
		MatrixSeeds:               2,
		Benchmarks:                []benchResult{bench},
		SpeedupMachineVsGoroutine: 6,
		FingerprintMachine:        "aa",
		FingerprintGoroutine:      "aa",
	}
}

func runGate(t *testing.T, baseline, current benchResult) (bool, string) {
	t.Helper()
	var out strings.Builder
	failed := gate(&out, report(baseline), report(current), 0.20, 5.0, 0, 0)
	return failed, out.String()
}

// TestGateZeroBaselineIsExactMatch is the regression test for the silent
// pass: fractional tolerance against a 0 ns/op or 0 allocs/op baseline
// entry used to yield a vacuous limit, letting any regression through. Zero
// baselines are now exact-match-required.
func TestGateZeroBaselineIsExactMatch(t *testing.T) {
	good := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 10, StepsPerOp: 33}

	// 0 ns/op baseline vs a real current cost: must fail.
	if failed, out := runGate(t, benchResult{Name: "b", AllocsPerOp: 10, StepsPerOp: 33}, good); !failed {
		t.Fatalf("zero ns/op baseline passed a non-zero current:\n%s", out)
	}
	// 0 allocs/op baseline vs current allocations: must fail even within the
	// +8 grace that applies to non-zero baselines.
	zeroAllocs := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 0, StepsPerOp: 33}
	withAllocs := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 5, StepsPerOp: 33}
	if failed, out := runGate(t, zeroAllocs, withAllocs); !failed {
		t.Fatalf("zero allocs/op baseline passed a non-zero current:\n%s", out)
	}
	// 0 steps/op baseline vs a measured current: used to be skipped
	// entirely; must fail.
	zeroSteps := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 10}
	if failed, out := runGate(t, zeroSteps, good); !failed {
		t.Fatalf("zero steps/op baseline passed a measured current:\n%s", out)
	}
	// Exact zero-for-zero matches pass.
	zero := benchResult{Name: "b"}
	if failed, out := runGate(t, zero, zero); failed {
		t.Fatalf("all-zero exact match failed:\n%s", out)
	}
}

func TestGateTolerance(t *testing.T) {
	base := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 100, StepsPerOp: 33}

	// Within tolerance: pass.
	cur := base
	cur.NsPerOp = 115
	if failed, out := runGate(t, base, cur); failed {
		t.Fatalf("within-tolerance run failed:\n%s", out)
	}
	// ns/op beyond tolerance: fail.
	cur.NsPerOp = 130
	if failed, _ := runGate(t, base, cur); !failed {
		t.Fatal("25% ns/op regression passed")
	}
	// allocs/op beyond tolerance and grace: fail.
	cur = base
	cur.AllocsPerOp = 130
	if failed, _ := runGate(t, base, cur); !failed {
		t.Fatal("30% allocs/op regression passed")
	}
	// steps/op drift: fail (deterministic simulation).
	cur = base
	cur.StepsPerOp = 34
	if failed, _ := runGate(t, base, cur); !failed {
		t.Fatal("steps/op drift passed")
	}
}

func TestGateReportLevelChecks(t *testing.T) {
	base := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 10, StepsPerOp: 33}

	// Speedup below the floor: fail.
	b, c := report(base), report(base)
	c.SpeedupMachineVsGoroutine = 3
	var out strings.Builder
	if !gate(&out, b, c, 0.20, 5.0, 0, 0) {
		t.Fatal("sub-floor speedup passed")
	}
	// Cross-engine fingerprint mismatch: fail.
	c = report(base)
	c.FingerprintGoroutine = "bb"
	out.Reset()
	if !gate(&out, b, c, 0.20, 5.0, 0, 0) {
		t.Fatal("fingerprint mismatch passed")
	}
	// Different GOMAXPROCS demotes wall-clock gates to warnings but keeps
	// deterministic gates fatal.
	c = report(base)
	c.GOMAXPROCS = 1
	c.Benchmarks[0].NsPerOp = 1000
	out.Reset()
	if gate(&out, b, c, 0.20, 5.0, 0, 0) {
		t.Fatalf("wall-clock regression stayed fatal on different hardware:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "warn:") {
		t.Fatalf("expected demoted warning, got:\n%s", out.String())
	}
	c.Benchmarks[0].StepsPerOp = 44
	out.Reset()
	if !gate(&out, b, c, 0.20, 5.0, 0, 0) {
		t.Fatal("steps/op drift passed on different hardware")
	}
}

// TestGateExploreReduction covers the source-vs-classic run-count floor: the
// ratio is deterministic, so it stays fatal even across hardware, and a zero
// floor disables the check entirely (for baselines predating the field).
func TestGateExploreReduction(t *testing.T) {
	base := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 10, StepsPerOp: 33}

	b, c := report(base), report(base)
	c.ExploreReduction = 1.5
	var out strings.Builder
	if !gate(&out, b, c, 0.20, 5.0, 2.0, 0) {
		t.Fatalf("sub-floor explore reduction passed:\n%s", out.String())
	}
	// Above the floor: pass, and report the ratio.
	c.ExploreReduction = 12.0
	out.Reset()
	if gate(&out, b, c, 0.20, 5.0, 2.0, 0) {
		t.Fatalf("above-floor explore reduction failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "explore reduction 12.00x") {
		t.Fatalf("expected reduction line, got:\n%s", out.String())
	}
	// Stays fatal on different hardware (deterministic ratio).
	c.ExploreReduction = 1.5
	c.GOMAXPROCS = 1
	out.Reset()
	if !gate(&out, b, c, 0.20, 5.0, 2.0, 0) {
		t.Fatal("sub-floor explore reduction passed on different hardware")
	}
	// Floor 0 disables the check.
	out.Reset()
	c = report(base)
	if gate(&out, b, c, 0.20, 5.0, 0, 0) {
		t.Fatalf("disabled reduction check still failed:\n%s", out.String())
	}
}

// TestGateFlipReduction mirrors the explore-reduction coverage for the
// switch-budget-1 ratio guarded by flip-anchored wakeup sequences.
func TestGateFlipReduction(t *testing.T) {
	base := benchResult{Name: "b", NsPerOp: 100, AllocsPerOp: 10, StepsPerOp: 33}

	b, c := report(base), report(base)
	c.FlipReduction = 1.2
	var out strings.Builder
	if !gate(&out, b, c, 0.20, 5.0, 0, 2.0) {
		t.Fatalf("sub-floor flip reduction passed:\n%s", out.String())
	}
	// Above the floor: pass, and report the ratio.
	c.FlipReduction = 7.5
	out.Reset()
	if gate(&out, b, c, 0.20, 5.0, 0, 2.0) {
		t.Fatalf("above-floor flip reduction failed:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "flip reduction 7.50x") {
		t.Fatalf("expected flip-reduction line, got:\n%s", out.String())
	}
	// Stays fatal on different hardware (deterministic ratio).
	c.FlipReduction = 1.2
	c.GOMAXPROCS = 1
	out.Reset()
	if !gate(&out, b, c, 0.20, 5.0, 0, 2.0) {
		t.Fatal("sub-floor flip reduction passed on different hardware")
	}
	// Floor 0 disables the check.
	out.Reset()
	c = report(base)
	if gate(&out, b, c, 0.20, 5.0, 0, 0) {
		t.Fatalf("disabled flip check still failed:\n%s", out.String())
	}
}
