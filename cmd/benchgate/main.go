// Command benchgate is the CI benchmark-regression gate: it compares a fresh
// `paperbench -bench-json` report against the committed baseline and fails
// (exit 1) when a hot path regressed.
//
// Checks, per benchmark present in both reports:
//
//   - ns/op must not exceed baseline × (1 + tolerance) — wall-clock gate;
//   - allocs/op must not exceed baseline × (1 + tolerance) — allocation gate;
//   - steps/op, when present in both, must match exactly — the simulation is
//     deterministic, so any drift is a semantic change, not noise.
//
// Report-level checks: the machine and goroutine lab fingerprints must be
// equal within the current report (bit-identical results across engines), the
// machine-vs-goroutine matrix speedup must not fall below -min-speedup, the
// deterministic explorer run-count ratios must not fall below
// -min-explore-reduction (budget 0) and -min-flip-reduction (switch budget 1),
// and the measured workloads (matrix seeds) must match.
//
// Wall-clock numbers only compare meaningfully on comparable hardware. When
// the two reports disagree on GOMAXPROCS (a cheap different-machine
// heuristic), the ns/op and allocs/op gates demote to warnings and only the
// machine-independent checks (steps/op, fingerprints, speedup ratio) stay
// fatal; regenerate the baseline on the gating machine to re-arm them.
//
// Improvements never fail the gate; they are reported so the baseline can be
// refreshed (`paperbench -bench-json bench/baseline.json`).
//
// Usage:
//
//	benchgate -baseline bench/baseline.json -current BENCH_PR2.json
//	benchgate -tolerance 0.2 -min-speedup 5 ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
)

// benchReport mirrors cmd/paperbench's BenchReport (kept in sync by the
// schema field; both sides are this repository).
type benchReport struct {
	Schema                    int           `json:"schema"`
	GOMAXPROCS                int           `json:"gomaxprocs"`
	MatrixSeeds               int           `json:"matrix_seeds"`
	Benchmarks                []benchResult `json:"benchmarks"`
	SpeedupMachineVsGoroutine float64       `json:"speedup_machine_vs_goroutine"`
	ExploreReduction          float64       `json:"explore_reduction"`
	FlipReduction             float64       `json:"flip_reduction"`
	FingerprintMachine        string        `json:"fingerprint_machine"`
	FingerprintGoroutine      string        `json:"fingerprint_goroutine"`
}

type benchResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	StepsPerOp  float64 `json:"steps_per_op"`
	StepsPerSec float64 `json:"steps_per_sec"`
}

func load(path string) (*benchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, rep.Schema)
	}
	return &rep, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchgate: ")
	var (
		baselinePath = flag.String("baseline", "bench/baseline.json", "committed baseline report")
		currentPath  = flag.String("current", "", "freshly measured report (paperbench -bench-json)")
		tolerance    = flag.Float64("tolerance", 0.20, "allowed fractional regression in ns/op and allocs/op")
		minSpeedup   = flag.Float64("min-speedup", 5.0, "minimum machine-vs-goroutine matrix speedup")
		minReduction = flag.Float64("min-explore-reduction", 2.0, "minimum classic-vs-source explorer run-count reduction (0 disables the check)")
		minFlip      = flag.Float64("min-flip-reduction", 2.0, "minimum classic-vs-source run-count reduction on the switch-budget-1 sweep (0 disables the check)")
	)
	flag.Parse()
	if *currentPath == "" {
		log.Fatal("-current is required")
	}

	baseline, err := load(*baselinePath)
	if err != nil {
		log.Fatal(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		log.Fatal(err)
	}
	if gate(os.Stdout, baseline, current, *tolerance, *minSpeedup, *minReduction, *minFlip) {
		os.Exit(1)
	}
}

// gate runs every check of current against baseline, writing the report to
// w, and returns whether any fatal check failed.
//
// Fractional-tolerance comparisons are meaningless against a zero baseline
// (the limit collapses to zero and grace margins can wave a real regression
// through), so zero baseline entries are exact-match-required: any non-zero
// current value against a zero baseline fails — always fatally, since a
// zero recorded cost is either corrupt data or a metric the current report
// must also lack.
func gate(w io.Writer, baseline, current *benchReport, tolerance, minSpeedup, minReduction, minFlip float64) (failed bool) {
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(w, "FAIL: "+format+"\n", args...)
	}
	// Wall-clock comparisons only mean something on comparable hardware;
	// demote them to warnings when the reports come from different machines.
	sameHardware := baseline.GOMAXPROCS == current.GOMAXPROCS
	wallFail := fail
	if !sameHardware {
		fmt.Fprintf(w, "note: baseline GOMAXPROCS=%d vs current GOMAXPROCS=%d — different machine; wall-clock gates demoted to warnings (regenerate the baseline here to re-arm)\n",
			baseline.GOMAXPROCS, current.GOMAXPROCS)
		wallFail = func(format string, args ...any) {
			fmt.Fprintf(w, "warn: "+format+"\n", args...)
		}
	}

	if baseline.MatrixSeeds != current.MatrixSeeds {
		fail("workloads differ: baseline matrix seeds %d vs current %d (pass the baseline's -seeds to paperbench -bench-json)",
			baseline.MatrixSeeds, current.MatrixSeeds)
	}
	if current.FingerprintMachine != current.FingerprintGoroutine {
		fail("runner fingerprints differ: machine %s vs goroutine %s",
			current.FingerprintMachine, current.FingerprintGoroutine)
	}
	if current.SpeedupMachineVsGoroutine < minSpeedup {
		fail("matrix speedup %.2fx below required %.2fx",
			current.SpeedupMachineVsGoroutine, minSpeedup)
	} else {
		fmt.Fprintf(w, "ok:   matrix speedup %.2fx (floor %.2fx)\n",
			current.SpeedupMachineVsGoroutine, minSpeedup)
	}
	// The run-count ratio is deterministic in the exploration configuration
	// (no wall clock involved), so this check stays fatal on any hardware.
	if minReduction > 0 {
		if current.ExploreReduction < minReduction {
			fail("explore reduction %.2fx below required %.2fx (the source engine must beat classic DPOR on executed runs)",
				current.ExploreReduction, minReduction)
		} else {
			fmt.Fprintf(w, "ok:   explore reduction %.2fx (floor %.2fx)\n",
				current.ExploreReduction, minReduction)
		}
	}
	// Same determinism argument for the switch-budget-1 ratio: flip-anchored
	// wakeup sequences must keep the source engine well below classic even
	// under unstable histories.
	if minFlip > 0 {
		if current.FlipReduction < minFlip {
			fail("flip reduction %.2fx below required %.2fx (flip-anchored wakeup sequences must beat classic DPOR at switch budget 1)",
				current.FlipReduction, minFlip)
		} else {
			fmt.Fprintf(w, "ok:   flip reduction %.2fx (floor %.2fx)\n",
				current.FlipReduction, minFlip)
		}
	}

	base := make(map[string]benchResult, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	seen := 0
	for _, cur := range current.Benchmarks {
		b, ok := base[cur.Name]
		if !ok {
			fmt.Fprintf(w, "note: %s has no baseline (new benchmark)\n", cur.Name)
			continue
		}
		seen++
		switch {
		case b.NsPerOp == 0:
			if cur.NsPerOp != 0 {
				fail("%s: baseline records 0 ns/op (exact match required); current %.0f ns/op",
					cur.Name, cur.NsPerOp)
			}
		case cur.NsPerOp > b.NsPerOp*(1+tolerance):
			wallFail("%s: %.0f ns/op exceeds baseline %.0f ns/op by more than %.0f%%",
				cur.Name, cur.NsPerOp, b.NsPerOp, tolerance*100)
		case cur.NsPerOp < b.NsPerOp*(1-tolerance):
			fmt.Fprintf(w, "ok:   %s improved: %.0f -> %.0f ns/op (consider refreshing the baseline)\n",
				cur.Name, b.NsPerOp, cur.NsPerOp)
		default:
			fmt.Fprintf(w, "ok:   %s: %.0f ns/op (baseline %.0f)\n", cur.Name, cur.NsPerOp, b.NsPerOp)
		}
		switch {
		case b.AllocsPerOp == 0:
			if cur.AllocsPerOp != 0 {
				fail("%s: baseline records 0 allocs/op (exact match required); current %d allocs/op",
					cur.Name, cur.AllocsPerOp)
			}
		case float64(cur.AllocsPerOp) > float64(b.AllocsPerOp)*(1+tolerance) && cur.AllocsPerOp > b.AllocsPerOp+8:
			// Alloc counts are hardware-independent in principle, but map/GC
			// internals vary across Go builds; gate them with the wall rules.
			wallFail("%s: %d allocs/op exceeds baseline %d by more than %.0f%%",
				cur.Name, cur.AllocsPerOp, b.AllocsPerOp, tolerance*100)
		}
		if b.StepsPerOp != cur.StepsPerOp {
			fail("%s: steps/op drifted: %.1f -> %.1f (simulation is deterministic; this is a semantic change)",
				cur.Name, b.StepsPerOp, cur.StepsPerOp)
		}
	}
	if seen == 0 {
		fail("no benchmark overlaps the baseline")
	}
	if !failed {
		fmt.Fprintln(w, "benchgate: all checks passed")
	}
	return failed
}
