package weakestfd

// Randomized cross-validation: quick-check style sweeps over the whole
// facade. Every generated configuration must either solve its task with the
// advertised guarantees or fail with a well-typed error — never panic, never
// return an unchecked violation. This is the catch-all net under the
// targeted suites.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genConfig derives a pseudo-random but valid configuration from raw bits.
func genConfig(raw [6]uint8, alg Algorithm) SetAgreementConfig {
	rng := rand.New(rand.NewSource(int64(raw[0])<<16 | int64(raw[1])<<8 | int64(raw[2])))
	n := 2 + int(raw[0]%6) // 2..7
	f := 1 + int(raw[1])%(n-1)
	proposals := make([]int64, n)
	distinct := 1 + int(raw[2])%n
	for i := range proposals {
		proposals[i] = int64(10 + i%distinct)
	}
	crashAt := map[int]int64{}
	budgetF := f
	if alg != UpsilonFFig2 {
		budgetF = n - 1
	}
	crashes := int(raw[3]) % (budgetF + 1)
	for i := 0; i < crashes; i++ {
		crashAt[(i*2+1)%n] = int64(5 + rng.Intn(200))
	}
	sched := RandomSchedule
	if raw[4]%4 == 0 {
		sched = RoundRobinSchedule
	}
	return SetAgreementConfig{
		N: n, F: f, Algorithm: alg,
		Proposals:   proposals,
		CrashAt:     crashAt,
		StabilizeAt: int64(raw[5]) * 4,
		Seed:        int64(raw[4]),
		Schedule:    sched,
		Budget:      1 << 22,
	}
}

func TestQuickSolveSetAgreementFig1(t *testing.T) {
	prop := func(raw [6]uint8) bool {
		cfg := genConfig(raw, UpsilonFig1)
		res, err := SolveSetAgreement(cfg)
		if err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		return len(res.Distinct) <= res.K
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSolveSetAgreementFig2(t *testing.T) {
	prop := func(raw [6]uint8) bool {
		cfg := genConfig(raw, UpsilonFFig2)
		res, err := SolveSetAgreement(cfg)
		if err != nil {
			t.Logf("cfg %+v: %v", cfg, err)
			return false
		}
		return len(res.Distinct) <= cfg.F
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickBaselines(t *testing.T) {
	for _, alg := range []Algorithm{OmegaNBaseline, OmegaConsensus, OmegaNBoosted} {
		t.Run(alg.String(), func(t *testing.T) {
			prop := func(raw [6]uint8) bool {
				cfg := genConfig(raw, alg)
				res, err := SolveSetAgreement(cfg)
				if err != nil {
					t.Logf("cfg %+v: %v", cfg, err)
					return false
				}
				return len(res.Distinct) <= res.K
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestQuickExtraction(t *testing.T) {
	dets := []Detector{Omega, OmegaN, OmegaF, StableEvPerfect}
	prop := func(raw [5]uint8) bool {
		n := 3 + int(raw[0]%4) // 3..6
		f := 2 + int(raw[1])%(n-2)
		det := dets[int(raw[2])%len(dets)]
		if det == OmegaN {
			f = n - 1 // Ωn extracts the wait-free Υ; the facade rejects other F
		}
		crashAt := map[int]int64{}
		if raw[3]%2 == 0 {
			crashAt[int(raw[3])%n] = int64(300 + 10*int(raw[4]))
		}
		res, err := ExtractUpsilon(ExtractConfig{
			N: n, F: f, From: det,
			StabilizeAt: int64(raw[4]) * 2,
			CrashAt:     crashAt,
			Seed:        int64(raw[0]) ^ int64(raw[4])<<3,
			Budget:      60_000,
		})
		if err != nil {
			t.Logf("n=%d f=%d det=%v: %v", n, f, det, err)
			return false
		}
		return res.LegalErr == nil && len(res.Stable) >= n-f
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickAsyncNeverViolatesSafety(t *testing.T) {
	// The FD-free attempt may or may not terminate; when it does, the
	// outcome must still satisfy (n−1)-set agreement, and when it does not,
	// the error must be ErrNoTermination, not a safety violation.
	prop := func(raw [6]uint8) bool {
		cfg := genConfig(raw, AsyncAttempt)
		cfg.Budget = 30_000
		res, err := SolveSetAgreement(cfg)
		if err != nil {
			return errors.Is(err, ErrNoTermination)
		}
		return len(res.Distinct) <= cfg.N-1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// FuzzSolveSetAgreement is the native fuzz face of the quick-check sweeps,
// upgraded to a differential test: every generated configuration runs on
// *both* execution engines, which must agree exactly — on success results
// and on failure kinds — while the advertised k-set-agreement bound holds.
// CI runs it in short -fuzztime mode as a smoke job.
func FuzzSolveSetAgreement(f *testing.F) {
	f.Add(uint8(3), uint8(1), uint8(2), uint8(0), uint8(1), uint8(50), uint8(0))
	f.Add(uint8(5), uint8(2), uint8(4), uint8(2), uint8(4), uint8(0), uint8(1))
	f.Add(uint8(250), uint8(9), uint8(33), uint8(7), uint8(8), uint8(200), uint8(2))
	f.Add(uint8(66), uint8(3), uint8(1), uint8(1), uint8(0), uint8(12), uint8(5))
	f.Fuzz(func(t *testing.T, b0, b1, b2, b3, b4, b5, algByte uint8) {
		algs := []Algorithm{UpsilonFig1, UpsilonFFig2, OmegaNBaseline, OmegaConsensus, OmegaNBoosted, AsyncAttempt}
		alg := algs[int(algByte)%len(algs)]
		cfg := genConfig([6]uint8{b0, b1, b2, b3, b4, b5}, alg)
		if alg == AsyncAttempt {
			// The FD-free attempt livelocks under round-robin; cap the budget
			// (as TestQuickAsyncNeverViolatesSafety does) so one fuzz input
			// cannot burn millions of steps on both engines.
			cfg.Budget = 30_000
		}
		machineCfg := cfg
		machineCfg.Runner = MachineRunner
		legacyCfg := cfg
		legacyCfg.Runner = GoroutineRunner
		mRes, mErr := SolveSetAgreement(machineCfg)
		gRes, gErr := SolveSetAgreement(legacyCfg)
		if (mErr == nil) != (gErr == nil) {
			t.Fatalf("cfg %+v: runners disagree: machine=%v goroutine=%v", cfg, mErr, gErr)
		}
		if mErr != nil {
			if !errors.Is(mErr, ErrNoTermination) {
				t.Fatalf("cfg %+v: %v", cfg, mErr)
			}
			if alg != AsyncAttempt {
				t.Fatalf("cfg %+v: unexpected non-termination: %v", cfg, mErr)
			}
			return
		}
		if !reflect.DeepEqual(mRes, gRes) {
			t.Fatalf("cfg %+v: results differ:\n machine:   %+v\n goroutine: %+v", cfg, mRes, gRes)
		}
		if len(mRes.Distinct) > mRes.K {
			t.Fatalf("cfg %+v: %d distinct decisions exceed k=%d", cfg, len(mRes.Distinct), mRes.K)
		}
	})
}

// FuzzExtractUpsilon differentially fuzzes the Figure 3 reduction: both
// engines must produce the identical extraction and the extracted output must
// satisfy the Υ^f specification.
func FuzzExtractUpsilon(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), uint8(30))
	f.Add(uint8(2), uint8(1), uint8(1), uint8(2), uint8(80))
	f.Add(uint8(3), uint8(2), uint8(3), uint8(5), uint8(0))
	f.Fuzz(func(t *testing.T, b0, b1, b2, b3, b4 uint8) {
		dets := []Detector{Omega, OmegaN, OmegaF, StableEvPerfect}
		n := 3 + int(b0%4) // 3..6
		fRes := 2 + int(b1)%(n-2)
		det := dets[int(b2)%len(dets)]
		if det == OmegaN {
			fRes = n - 1 // Ωn extracts the wait-free Υ
		}
		crashAt := map[int]int64{}
		if b3%2 == 0 {
			crashAt[int(b3)%n] = int64(300 + 10*int(b4))
		}
		cfg := ExtractConfig{
			N: n, F: fRes, From: det,
			StabilizeAt: int64(b4) * 2,
			CrashAt:     crashAt,
			Seed:        int64(b0) ^ int64(b4)<<3,
			Budget:      30_000,
		}
		machineCfg := cfg
		machineCfg.Runner = MachineRunner
		legacyCfg := cfg
		legacyCfg.Runner = GoroutineRunner
		mRes, mErr := ExtractUpsilon(machineCfg)
		gRes, gErr := ExtractUpsilon(legacyCfg)
		if (mErr == nil) != (gErr == nil) {
			t.Fatalf("cfg %+v: runners disagree: machine=%v goroutine=%v", cfg, mErr, gErr)
		}
		if mErr != nil {
			t.Fatalf("cfg %+v: %v", cfg, mErr)
		}
		if !reflect.DeepEqual(mRes, gRes) {
			t.Fatalf("cfg %+v: results differ:\n machine:   %+v\n goroutine: %+v", cfg, mRes, gRes)
		}
		if mRes.LegalErr != nil || len(mRes.Stable) < n-fRes {
			t.Fatalf("cfg %+v: illegal extraction %+v", cfg, mRes)
		}
	})
}

func TestQuickTimingAssumptions(t *testing.T) {
	prop := func(raw [5]uint8) bool {
		n := 3 + int(raw[0]%3)
		proposals := make([]int64, n)
		for i := range proposals {
			proposals[i] = int64(100 + i)
		}
		crashAt := map[int]int64{}
		if raw[1]%2 == 0 {
			crashAt[int(raw[1])%n] = int64(200 + 10*int(raw[2]))
		}
		res, err := SolveWithTimingAssumptions(TimedConfig{
			N: n, Proposals: proposals, CrashAt: crashAt,
			GST:  400 + int64(raw[3])*8,
			Seed: int64(raw[4]),
		})
		if err != nil {
			t.Logf("n=%d: %v", n, err)
			return false
		}
		return len(res.Distinct) <= res.K
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
