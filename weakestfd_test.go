package weakestfd

import (
	"errors"
	"testing"
)

func TestSolveSetAgreementQuickstart(t *testing.T) {
	res, err := SolveSetAgreement(SetAgreementConfig{
		N:         4,
		Proposals: []int64{10, 20, 30, 40},
		CrashAt:   map[int]int64{3: 50},
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distinct) > res.K || res.K != 3 {
		t.Fatalf("distinct=%v k=%d", res.Distinct, res.K)
	}
	for i := 0; i < 3; i++ {
		if _, ok := res.Decisions[i]; !ok {
			t.Fatalf("correct process %d missing decision", i)
		}
	}
}

func TestSolveSetAgreementAllAlgorithms(t *testing.T) {
	for _, alg := range []Algorithm{UpsilonFig1, UpsilonFFig2, OmegaNBaseline, OmegaConsensus, OmegaNBoosted} {
		t.Run(alg.String(), func(t *testing.T) {
			res, err := SolveSetAgreement(SetAgreementConfig{
				N:           5,
				F:           2,
				Algorithm:   alg,
				Proposals:   []int64{1, 2, 3, 4, 5},
				CrashAt:     map[int]int64{4: 5},
				StabilizeAt: 80,
				Seed:        7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Distinct) > res.K {
				t.Fatalf("agreement: %v > k=%d", res.Distinct, res.K)
			}
			if len(res.Crashed) != 1 || res.Crashed[0] != 4 {
				t.Fatalf("crashed = %v", res.Crashed)
			}
			if _, ok := res.Decisions[4]; ok {
				t.Fatal("crashed process should not decide")
			}
		})
	}
}

func TestSolveSetAgreementAsyncLivelock(t *testing.T) {
	_, err := SolveSetAgreement(SetAgreementConfig{
		N:         4,
		Algorithm: AsyncAttempt,
		Proposals: []int64{1, 2, 3, 4},
		Schedule:  RoundRobinSchedule,
		Budget:    50_000,
	})
	if !errors.Is(err, ErrNoTermination) {
		t.Fatalf("want ErrNoTermination, got %v", err)
	}
}

func TestSolveSetAgreementRegistersOnly(t *testing.T) {
	res, err := SolveSetAgreement(SetAgreementConfig{
		N:             3,
		Proposals:     []int64{7, 8, 9},
		RegistersOnly: true,
		Seed:          3,
		Budget:        1 << 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distinct) > 2 {
		t.Fatalf("distinct = %v", res.Distinct)
	}
}

func TestSolveSetAgreementValidation(t *testing.T) {
	cases := map[string]SetAgreementConfig{
		"small N":       {N: 1, Proposals: []int64{1}},
		"bad proposals": {N: 3, Proposals: []int64{1}},
		"all crash":     {N: 2, Proposals: []int64{1, 2}, CrashAt: map[int]int64{0: 1, 1: 1}},
		"bad crash idx": {N: 2, Proposals: []int64{1, 2}, CrashAt: map[int]int64{5: 1}},
		"neg crash":     {N: 2, Proposals: []int64{1, 2}, CrashAt: map[int]int64{0: -1}},
		"bad F":         {N: 3, F: 3, Algorithm: UpsilonFFig2, Proposals: []int64{1, 2, 3}},
		"outside Ef": {N: 4, F: 1, Algorithm: UpsilonFFig2, Proposals: []int64{1, 2, 3, 4},
			CrashAt: map[int]int64{0: 1, 1: 1}},
	}
	for name, cfg := range cases {
		if _, err := SolveSetAgreement(cfg); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSolveSetAgreementDeterminism(t *testing.T) {
	cfg := SetAgreementConfig{
		N: 5, Proposals: []int64{1, 2, 3, 4, 5},
		CrashAt: map[int]int64{1: 40}, StabilizeAt: 120, Seed: 9,
	}
	a, err := SolveSetAgreement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveSetAgreement(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	for p, v := range a.Decisions {
		if b.Decisions[p] != v {
			t.Fatalf("decisions differ at %d", p)
		}
	}
}

func TestExtractUpsilonAllDetectors(t *testing.T) {
	for _, d := range []Detector{Omega, OmegaN, OmegaF, StableEvPerfect} {
		t.Run(d.String(), func(t *testing.T) {
			res, err := ExtractUpsilon(ExtractConfig{
				N: 4, F: 3,
				From:        d,
				StabilizeAt: 100,
				Seed:        2,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Stable) == 0 {
				t.Fatal("empty extracted set")
			}
			if res.LegalErr != nil {
				t.Fatalf("illegal: %v", res.LegalErr)
			}
		})
	}
}

func TestExtractUpsilonWithSlackAndCrash(t *testing.T) {
	res, err := ExtractUpsilon(ExtractConfig{
		N: 4, From: Omega, BatchSlack: 2,
		CrashAt: map[int]int64{2: 400},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.StableFrom >= res.Steps {
		t.Fatalf("never stabilized: from=%d steps=%d", res.StableFrom, res.Steps)
	}
}

func TestExtractUpsilonValidation(t *testing.T) {
	if _, err := ExtractUpsilon(ExtractConfig{N: 1}); err == nil {
		t.Error("expected error for N=1")
	}
	if _, err := ExtractUpsilon(ExtractConfig{N: 4, From: Detector(99)}); err == nil {
		t.Error("expected error for unknown detector")
	}
}

func TestFalsifyCandidates(t *testing.T) {
	for _, cand := range []string{"complement", "staleness", "hybrid"} {
		t.Run(cand, func(t *testing.T) {
			res, err := Falsify(FalsifyConfig{N: 4, F: 3, Candidate: cand, TargetSwitches: 10})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Falsified {
				t.Fatalf("candidate %s not falsified: %+v", cand, res)
			}
		})
	}
}

func TestFalsifyValidation(t *testing.T) {
	if _, err := Falsify(FalsifyConfig{N: 4, F: 3, Candidate: "nope"}); err == nil {
		t.Error("expected unknown-candidate error")
	}
	if _, err := Falsify(FalsifyConfig{N: 2, F: 2, Candidate: "complement"}); err == nil {
		t.Error("expected range error")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[Algorithm]string{
		UpsilonFig1: "fig1-upsilon", UpsilonFFig2: "fig2-upsilonf",
		OmegaNBaseline: "omegan-baseline", OmegaConsensus: "omega-consensus",
		AsyncAttempt: "async-attempt", OmegaNBoosted: "omegan-boosted-consensus",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d → %q, want %q", int(a), a.String(), want)
		}
	}
}
