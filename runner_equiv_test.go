package weakestfd_test

import (
	"fmt"
	"reflect"
	"testing"

	"weakestfd"
	"weakestfd/internal/lab"
	"weakestfd/internal/lab/scenarios"
)

// Facade-level equivalence: every entry point must return identical results
// on the machine runner (the default) and the goroutine runner (the
// -legacy-runner escape hatch). The internal suites compare raw sim.Reports;
// this one closes the loop over the public API and the lab fingerprint.

func TestRunnerEquivalenceSolve(t *testing.T) {
	algorithms := []weakestfd.Algorithm{
		weakestfd.UpsilonFig1,
		weakestfd.UpsilonFFig2,
		weakestfd.OmegaNBaseline,
		weakestfd.OmegaConsensus,
		weakestfd.OmegaNBoosted,
	}
	for _, alg := range algorithms {
		for _, sched := range []weakestfd.ScheduleKind{weakestfd.RandomSchedule, weakestfd.RoundRobinSchedule} {
			for seed := int64(0); seed < 3; seed++ {
				t.Run(fmt.Sprintf("%v/sched%d/seed%d", alg, sched, seed), func(t *testing.T) {
					base := weakestfd.SetAgreementConfig{
						N: 5, F: 2, Algorithm: alg,
						Proposals:   []int64{100, 101, 102, 103, 104},
						CrashAt:     map[int]int64{2: 25},
						StabilizeAt: 120,
						Seed:        seed,
						Schedule:    sched,
						Budget:      1 << 22,
					}
					machineCfg := base
					machineCfg.Runner = weakestfd.MachineRunner
					legacyCfg := base
					legacyCfg.Runner = weakestfd.GoroutineRunner
					mRes, mErr := weakestfd.SolveSetAgreement(machineCfg)
					gRes, gErr := weakestfd.SolveSetAgreement(legacyCfg)
					if (mErr == nil) != (gErr == nil) {
						t.Fatalf("error mismatch: machine=%v goroutine=%v", mErr, gErr)
					}
					if mErr != nil {
						return
					}
					if !reflect.DeepEqual(mRes, gRes) {
						t.Fatalf("result mismatch:\n machine:   %+v\n goroutine: %+v", mRes, gRes)
					}
				})
			}
		}
	}
}

func TestRunnerEquivalenceExtract(t *testing.T) {
	for _, det := range []weakestfd.Detector{weakestfd.Omega, weakestfd.OmegaN, weakestfd.StableEvPerfect} {
		for seed := int64(0); seed < 2; seed++ {
			t.Run(fmt.Sprintf("%v/seed%d", det, seed), func(t *testing.T) {
				base := weakestfd.ExtractConfig{
					N: 5, From: det, StabilizeAt: 150,
					CrashAt: map[int]int64{1: 400},
					Seed:    seed, Budget: 30_000,
				}
				machineCfg := base
				machineCfg.Runner = weakestfd.MachineRunner
				legacyCfg := base
				legacyCfg.Runner = weakestfd.GoroutineRunner
				mRes, mErr := weakestfd.ExtractUpsilon(machineCfg)
				gRes, gErr := weakestfd.ExtractUpsilon(legacyCfg)
				if mErr != nil || gErr != nil {
					t.Fatalf("machine=%v goroutine=%v", mErr, gErr)
				}
				if !reflect.DeepEqual(mRes, gRes) {
					t.Fatalf("result mismatch:\n machine:   %+v\n goroutine: %+v", mRes, gRes)
				}
			})
		}
	}
}

func TestRunnerEquivalenceCompose(t *testing.T) {
	for _, det := range []weakestfd.Detector{weakestfd.Omega, weakestfd.OmegaN, weakestfd.StableEvPerfect} {
		t.Run(det.String(), func(t *testing.T) {
			base := weakestfd.ComposeConfig{
				N: 4, From: det, Proposals: []int64{100, 101, 102, 103},
				CrashAt: map[int]int64{1: 60}, StabilizeAt: 100,
				Seed: 7, Budget: 1 << 22,
			}
			machineCfg := base
			machineCfg.Runner = weakestfd.MachineRunner
			legacyCfg := base
			legacyCfg.Runner = weakestfd.GoroutineRunner
			mRes, mErr := weakestfd.SolveWithStableDetector(machineCfg)
			gRes, gErr := weakestfd.SolveWithStableDetector(legacyCfg)
			if mErr != nil || gErr != nil {
				t.Fatalf("machine=%v goroutine=%v", mErr, gErr)
			}
			if !reflect.DeepEqual(mRes, gRes) {
				t.Fatalf("result mismatch:\n machine:   %+v\n goroutine: %+v", mRes, gRes)
			}
		})
	}
}

func TestRunnerEquivalenceTiming(t *testing.T) {
	for seed := int64(0); seed < 2; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := weakestfd.TimedConfig{
				N: 4, Proposals: []int64{100, 101, 102, 103},
				CrashAt: map[int]int64{1: 300},
				GST:     800, Bound: 8, Seed: seed,
			}
			machineCfg := base
			machineCfg.Runner = weakestfd.MachineRunner
			legacyCfg := base
			legacyCfg.Runner = weakestfd.GoroutineRunner
			mRes, mErr := weakestfd.SolveWithTimingAssumptions(machineCfg)
			gRes, gErr := weakestfd.SolveWithTimingAssumptions(legacyCfg)
			if mErr != nil || gErr != nil {
				t.Fatalf("machine=%v goroutine=%v", mErr, gErr)
			}
			if !reflect.DeepEqual(mRes, gRes) {
				t.Fatalf("result mismatch:\n machine:   %+v\n goroutine: %+v", mRes, gRes)
			}
		})
	}
}

// TestRunnerEquivalenceLabFingerprint is the cross-runner determinism gate
// the CI job scripts: the trimmed scenario matrix must produce the identical
// lab fingerprint on both engines.
func TestRunnerEquivalenceLabFingerprint(t *testing.T) {
	scs, err := lab.ExpandAll(scenarios.Quick(2))
	if err != nil {
		t.Fatal(err)
	}
	fingerprint := func(legacy bool) string {
		weakestfd.SetLegacyRunner(legacy)
		defer weakestfd.SetLegacyRunner(false)
		rep := lab.Run(scs, lab.Options{Workers: 1})
		if rep.Failed != 0 {
			t.Fatalf("legacy=%v: %d runs failed", legacy, rep.Failed)
		}
		return rep.Fingerprint()
	}
	machine := fingerprint(false)
	goroutine := fingerprint(true)
	if machine != goroutine {
		t.Fatalf("fingerprint mismatch:\n machine:   %s\n goroutine: %s", machine, goroutine)
	}
}
