// Package weakestfd is a faithful executable reproduction of
//
//	Guerraoui, Herlihy, Kuznetsov, Lynch, Newport:
//	"On the weakest failure detector ever" (PODC 2007;
//	Distributed Computing 21:353–366, 2009).
//
// It provides the failure detectors Υ and Υ^f, the register-based
// set-agreement protocols that use them (the paper's Figures 1 and 2), the
// generic extraction of Υ^f from any stable non-trivial failure detector
// (Figure 3 / Theorem 10), and the adversary constructions of Theorems 1
// and 5 — all running on a deterministic simulation of asynchronous
// crash-prone shared memory.
//
// This package is the high-level facade: plain-parameter entry points over
// the building blocks in internal/. The quickest route:
//
//	res, err := weakestfd.SolveSetAgreement(weakestfd.SetAgreementConfig{
//		N:         4,
//		Proposals: []int64{10, 20, 30, 40},
//		CrashAt:   map[int]int64{3: 50},
//		Seed:      1,
//	})
//
// which runs the Figure 1 protocol for four processes with one mid-run
// crash and returns every process's decision (at most N−1 distinct values,
// each of them proposed).
package weakestfd

import (
	"errors"
	"fmt"

	"weakestfd/internal/agreement"
	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/fd"
	"weakestfd/internal/sim"
	"weakestfd/internal/trace"
)

// Algorithm selects which set-agreement algorithm to run.
type Algorithm int

const (
	// UpsilonFig1 is the paper's Figure 1: n−1-set agreement from Υ
	// (wait-free). The default.
	UpsilonFig1 Algorithm = iota
	// UpsilonFFig2 is the paper's Figure 2: f-set agreement from Υ^f in E_f.
	UpsilonFFig2
	// OmegaNBaseline is Neiger's Ωn-based n−1-set agreement (the stronger-
	// detector baseline of Corollary 3).
	OmegaNBaseline
	// OmegaConsensus is consensus from Ω and registers.
	OmegaConsensus
	// AsyncAttempt is the failure-detector-free attempt; it generally does
	// not terminate (the impossibility the paper circumvents).
	AsyncAttempt
	// OmegaNBoosted is consensus among N processes from (N−1)-process
	// consensus objects, registers and Ωn — Corollary 4's comparator task,
	// which needs strictly more failure information than set agreement.
	OmegaNBoosted
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case UpsilonFig1:
		return "fig1-upsilon"
	case UpsilonFFig2:
		return "fig2-upsilonf"
	case OmegaNBaseline:
		return "omegan-baseline"
	case OmegaConsensus:
		return "omega-consensus"
	case AsyncAttempt:
		return "async-attempt"
	case OmegaNBoosted:
		return "omegan-boosted-consensus"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ScheduleKind selects the asynchronous adversary driving a run.
type ScheduleKind int

const (
	// RandomSchedule picks uniformly among runnable processes (seeded).
	RandomSchedule ScheduleKind = iota
	// RoundRobinSchedule runs processes in lockstep — the adversarial
	// schedule that defeats lucky early convergence.
	RoundRobinSchedule
)

// SetAgreementConfig configures one set-agreement run.
type SetAgreementConfig struct {
	// N is the number of processes (the paper's n+1); 2 ≤ N ≤ 64.
	N int
	// F is the resilience for UpsilonFFig2 (1 ≤ F ≤ N−1). Ignored by the
	// other algorithms (Figure 1 is the wait-free case F = N−1).
	F int
	// Algorithm selects the protocol; zero value is Figure 1.
	Algorithm Algorithm
	// Proposals are the input values, one per process. len must be N.
	Proposals []int64
	// CrashAt maps 0-based process indices to crash times (in atomic
	// steps). Absent processes are correct.
	CrashAt map[int]int64
	// StabilizeAt is the failure detector's stabilization time (steps);
	// before it the oracle emits arbitrary noise. Default 0 (stable from
	// the start).
	StabilizeAt int64
	// Seed drives the oracle noise, the stable-value choice and the random
	// schedule. Runs are deterministic in (config, seed).
	Seed int64
	// Schedule selects the adversary; default RandomSchedule.
	Schedule ScheduleKind
	// RegistersOnly backs snapshots with the Afek et al. construction from
	// single-writer registers instead of one-step snapshot objects,
	// exercising the paper's "registers suffice" claim (at O(n²) step
	// cost).
	RegistersOnly bool
	// Budget caps the run length in steps. Default 2^21.
	Budget int64
	// Trace, when set, records every atomic step and renders a step-class
	// summary into SetAgreementResult.Trace. Tracing forces the goroutine
	// runner (step labels exist only there).
	Trace bool
	// Runner selects the simulation engine; the zero value defers to the
	// package default (the machine runner unless SetLegacyRunner).
	Runner Runner
}

// SetAgreementResult reports one set-agreement run.
type SetAgreementResult struct {
	// Decisions maps each deciding process index to its decision.
	Decisions map[int]int64
	// Distinct is the sorted set of distinct decided values.
	Distinct []int64
	// K is the agreement bound the algorithm guarantees (≤ K distinct).
	K int
	// Steps is the number of atomic steps the run took.
	Steps int64
	// Crashed lists the processes that crashed.
	Crashed []int
	// Trace is the rendered step summary (empty unless requested).
	Trace string
}

// ErrNoTermination is returned when a run's step budget is exhausted before
// every correct process decided. For AsyncAttempt under adversarial
// schedules this is the expected outcome.
var ErrNoTermination = errors.New("weakestfd: run did not terminate within budget")

// SolveSetAgreement runs one set-agreement instance and verifies the
// Termination / Agreement / Validity properties before returning.
func SolveSetAgreement(cfg SetAgreementConfig) (*SetAgreementResult, error) {
	if cfg.N < 2 || cfg.N > sim.MaxProcs {
		return nil, fmt.Errorf("weakestfd: N=%d out of range [2,%d]", cfg.N, sim.MaxProcs)
	}
	if len(cfg.Proposals) != cfg.N {
		return nil, fmt.Errorf("weakestfd: %d proposals for N=%d", len(cfg.Proposals), cfg.N)
	}
	pattern, err := patternOf(cfg.N, cfg.CrashAt)
	if err != nil {
		return nil, err
	}
	impl := converge.UseAtomic
	if cfg.RegistersOnly {
		impl = converge.UseAfek
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = 1 << 21
	}

	// Each algorithm exposes the same automaton in two representations:
	// blocking bodies for the goroutine runner and resumable step machines
	// for the machine runner. bodyOf/machineOf build process i's instance.
	var (
		k         int
		bodyOf    func(i int) sim.Body
		machineOf func(i int) sim.StepMachine
	)
	ts := sim.Time(cfg.StabilizeAt)
	switch cfg.Algorithm {
	case UpsilonFig1:
		h := core.Upsilon(cfg.N).History(pattern, ts, cfg.Seed)
		g := core.NewFig1(cfg.N, h, impl)
		k = g.K()
		bodyOf = func(i int) sim.Body { return g.Body(sim.Value(cfg.Proposals[i])) }
		machineOf = func(i int) sim.StepMachine { return g.Machine(sim.Value(cfg.Proposals[i])) }
	case UpsilonFFig2:
		if cfg.F < 1 || cfg.F >= cfg.N {
			return nil, fmt.Errorf("weakestfd: F=%d out of range [1,%d]", cfg.F, cfg.N-1)
		}
		if !pattern.InEnvironment(cfg.F) {
			return nil, fmt.Errorf("weakestfd: %d crashes exceed F=%d (outside E_f)", pattern.NumFaulty(), cfg.F)
		}
		h := core.UpsilonF(cfg.N, cfg.F).History(pattern, ts, cfg.Seed)
		g := core.NewFig2(cfg.N, cfg.F, h, impl)
		k = g.K()
		bodyOf = func(i int) sim.Body { return g.Body(sim.Value(cfg.Proposals[i])) }
		machineOf = func(i int) sim.StepMachine { return g.Machine(sim.Value(cfg.Proposals[i])) }
	case OmegaNBaseline:
		h := fd.NewOmegaF(pattern, cfg.N-1, ts, cfg.Seed)
		g := agreement.NewOmegaNSetAgreement(cfg.N, h, impl)
		k = g.K()
		bodyOf = func(i int) sim.Body { return g.Body(sim.Value(cfg.Proposals[i])) }
		machineOf = func(i int) sim.StepMachine { return g.Machine(sim.Value(cfg.Proposals[i])) }
	case OmegaConsensus:
		h := fd.NewOmega(pattern, ts, cfg.Seed)
		g := agreement.NewOmegaConsensus(cfg.N, h, impl)
		k = 1
		bodyOf = func(i int) sim.Body { return g.Body(sim.Value(cfg.Proposals[i])) }
		machineOf = func(i int) sim.StepMachine { return g.Machine(sim.Value(cfg.Proposals[i])) }
	case AsyncAttempt:
		g := agreement.NewAsyncAttempt(cfg.N, impl)
		k = cfg.N - 1
		bodyOf = func(i int) sim.Body { return g.Body(sim.Value(cfg.Proposals[i])) }
		machineOf = func(i int) sim.StepMachine { return g.Machine(sim.Value(cfg.Proposals[i])) }
	case OmegaNBoosted:
		h := fd.NewOmegaF(pattern, cfg.N-1, ts, cfg.Seed)
		g := agreement.NewBoostedConsensus(cfg.N, h, impl)
		k = 1
		bodyOf = func(i int) sim.Body { return g.Body(sim.Value(cfg.Proposals[i])) }
		machineOf = func(i int) sim.StepMachine { return g.Machine(sim.Value(cfg.Proposals[i])) }
	default:
		return nil, fmt.Errorf("weakestfd: unknown algorithm %v", cfg.Algorithm)
	}

	simCfg := sim.Config{
		Pattern:  pattern,
		Schedule: scheduleOf(cfg.Schedule, cfg.Seed),
		Budget:   budget,
	}
	var rec *trace.Recorder
	var rep *sim.Report
	var runErr error
	if cfg.Runner.useMachines(cfg.Trace, cfg.RegistersOnly) {
		machines := make([]sim.StepMachine, cfg.N)
		for i := range machines {
			machines[i] = machineOf(i)
		}
		rep, runErr = sim.RunMachines(simCfg, machines)
	} else {
		if cfg.Trace {
			rec = trace.NewRecorder(nil)
			simCfg.Tracer = rec.Hook()
		}
		bodies := make([]sim.Body, cfg.N)
		for i := range bodies {
			bodies[i] = bodyOf(i)
		}
		rep, runErr = sim.Run(simCfg, bodies)
	}
	if runErr != nil {
		if errors.Is(runErr, sim.ErrBudgetExhausted) {
			return nil, fmt.Errorf("%w: %v", ErrNoTermination, runErr)
		}
		return nil, runErr
	}

	proposals := make([]sim.Value, cfg.N)
	for i, v := range cfg.Proposals {
		proposals[i] = sim.Value(v)
	}
	if err := check.SetAgreement(rep, pattern, k, proposals); err != nil {
		return nil, err
	}
	res := newResult(rep, k)
	if rec != nil {
		res.Trace = rec.Summarize().String()
	}
	return res, nil
}

func newResult(rep *sim.Report, k int) *SetAgreementResult {
	res := &SetAgreementResult{
		Decisions: make(map[int]int64, len(rep.Decided)),
		K:         k,
		Steps:     rep.Steps,
	}
	for p, v := range rep.Decided {
		res.Decisions[int(p)] = int64(v)
	}
	// This is the lab summary path (every scenario run folds a result);
	// collect into stack scratch via the non-allocating variants.
	var vals [sim.MaxProcs]sim.Value
	for _, v := range rep.DecidedValuesAppend(vals[:0]) {
		res.Distinct = append(res.Distinct, int64(v))
	}
	var pids [sim.MaxProcs]sim.PID
	for _, p := range rep.Crashed.MembersAppend(pids[:0]) {
		res.Crashed = append(res.Crashed, int(p))
	}
	return res
}

func patternOf(n int, crashAt map[int]int64) (sim.Pattern, error) {
	if len(crashAt) >= n {
		return sim.Pattern{}, fmt.Errorf("weakestfd: all %d processes crash; at least one must be correct", n)
	}
	crashes := make(map[sim.PID]sim.Time, len(crashAt))
	for i, t := range crashAt {
		if i < 0 || i >= n {
			return sim.Pattern{}, fmt.Errorf("weakestfd: crash index %d out of range", i)
		}
		if t < 0 {
			return sim.Pattern{}, fmt.Errorf("weakestfd: negative crash time %d", t)
		}
		crashes[sim.PID(i)] = sim.Time(t)
	}
	return sim.CrashPattern(n, crashes), nil
}

func scheduleOf(kind ScheduleKind, seed int64) sim.Schedule {
	if kind == RoundRobinSchedule {
		return sim.RoundRobin()
	}
	return sim.NewRandom(seed)
}
