package weakestfd

import (
	"errors"
	"fmt"

	"weakestfd/internal/check"
	"weakestfd/internal/converge"
	"weakestfd/internal/core"
	"weakestfd/internal/sim"
)

// TimedConfig configures SolveWithTimingAssumptions: set agreement with no
// oracle at all — Υ is *implemented* from heartbeats and adaptive timeouts,
// valid under an eventually synchronous schedule (the paper's Section 1
// observation that timing assumptions are where failure information comes
// from).
type TimedConfig struct {
	// N is the number of processes.
	N int
	// Proposals are the input values, one per process.
	Proposals []int64
	// CrashAt maps process indices to crash times.
	CrashAt map[int]int64
	// GST is the global stabilization time of the partial-synchrony
	// schedule: before it, scheduling is arbitrary; after it, every live
	// process takes a step at least once every Bound steps. Default 1000.
	GST int64
	// Bound is the post-GST step bound. Default 8.
	Bound int64
	// Threshold is the heartbeat monitor's initial patience (it doubles on
	// every false suspicion). Default 4.
	Threshold int64
	// Seed drives the pre-GST scheduling noise.
	Seed int64
	// Budget caps the run. Default 2^22.
	Budget int64
	// Runner selects the simulation engine; the zero value defers to the
	// package default (the machine runner unless SetLegacyRunner).
	Runner Runner
}

// SolveWithTimingAssumptions solves (N−1)-set agreement using only timing
// assumptions: each process runs a heartbeat-based Υ implementation as one
// parallel task and the Figure 1 protocol as another, under an eventually
// synchronous schedule. No failure detector oracle is involved anywhere.
func SolveWithTimingAssumptions(cfg TimedConfig) (*SetAgreementResult, error) {
	if cfg.N < 2 || cfg.N > sim.MaxProcs {
		return nil, fmt.Errorf("weakestfd: N=%d out of range", cfg.N)
	}
	if len(cfg.Proposals) != cfg.N {
		return nil, fmt.Errorf("weakestfd: %d proposals for N=%d", len(cfg.Proposals), cfg.N)
	}
	pattern, err := patternOf(cfg.N, cfg.CrashAt)
	if err != nil {
		return nil, err
	}
	gst := cfg.GST
	if gst == 0 {
		gst = 1_000
	}
	bound := cfg.Bound
	if bound == 0 {
		bound = 8
	}
	threshold := cfg.Threshold
	if threshold == 0 {
		threshold = 4
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = 1 << 22
	}

	c := core.NewTimedComposed(cfg.N, threshold, converge.UseAtomic)
	proposals := make([]sim.Value, cfg.N)
	for i, v := range cfg.Proposals {
		proposals[i] = sim.Value(v)
	}
	simCfg := sim.Config{
		Pattern:  pattern,
		Schedule: sim.EventuallySynchronous(sim.Time(gst), bound, cfg.Seed),
		Budget:   budget,
	}
	var rep *sim.Report
	var runErr error
	if cfg.Runner.useMachines(false, false) {
		rep, runErr = sim.RunTaskMachines(simCfg, c.MachineTaskSets(proposals))
	} else {
		rep, runErr = sim.RunTasks(simCfg, c.TaskSets(proposals))
	}
	if runErr != nil {
		if errors.Is(runErr, sim.ErrBudgetExhausted) {
			return nil, fmt.Errorf("%w: %v", ErrNoTermination, runErr)
		}
		return nil, runErr
	}
	if err := check.SetAgreement(rep, pattern, c.K(), proposals); err != nil {
		return nil, err
	}
	return newResult(rep, c.K()), nil
}
