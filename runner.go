package weakestfd

import "sync/atomic"

// Runner selects the simulation engine executing a run. The repository has
// two equivalent engines (see internal/sim): the goroutine runner executes
// each process body on its own goroutine with channel handshakes per step,
// while the machine runner drives resumable step machines in a single
// goroutine with zero channels — ~an order of magnitude less overhead per
// simulated step. Both produce identical results for identical
// configurations; the equivalence suite enforces it.
type Runner int

const (
	// DefaultRunner defers to the package default: the machine runner,
	// unless SetLegacyRunner(true) was called (the cmds' -legacy-runner
	// escape hatch).
	DefaultRunner Runner = iota
	// MachineRunner forces the single-goroutine step-machine engine.
	MachineRunner
	// GoroutineRunner forces the goroutine-per-process engine.
	GoroutineRunner
)

// legacyDefault flips the package default from the machine runner to the
// goroutine runner. Atomic because lab workers resolve it concurrently.
var legacyDefault atomic.Bool

// SetLegacyRunner switches the package-wide default engine to the goroutine
// runner (true) or back to the machine runner (false). It is meant to be
// called once at startup — the cmds wire their -legacy-runner flag to it;
// explicit per-config Runner values always win.
func SetLegacyRunner(legacy bool) { legacyDefault.Store(legacy) }

// resolve maps DefaultRunner to the current package default.
func (r Runner) resolve() Runner {
	if r != DefaultRunner {
		return r
	}
	if legacyDefault.Load() {
		return GoroutineRunner
	}
	return MachineRunner
}

// useMachines reports whether a run with the given feature requirements
// should use the machine runner. Step traces and the Afek registers-only
// snapshots are only available on the goroutine runner, so either forces the
// legacy engine regardless of the requested runner.
func (r Runner) useMachines(needsTrace, registersOnly bool) bool {
	return r.resolve() == MachineRunner && !needsTrace && !registersOnly
}
